// Ablation of the progress-analysis ranking (paper Sections 3.3/3.4).
//
// Properties 3.1 and 3.2 are evaluated on the ORIGINAL SG precisely so the
// expensive step — resynthesizing every cover on the candidate's new SG —
// is spent on promising divisors first.  This bench maps the suite at i = 2
// with the ranking enabled and disabled and reports how many full
// resyntheses each configuration needs (the mapped results themselves must
// agree).

#include <cstdio>
#include <string>

#include "bench/table_common.hpp"
#include "benchlib/suite.hpp"
#include "core/mapper.hpp"
#include "stg/stg.hpp"

using namespace sitm;
using namespace sitm::bench;

int main() {
  std::printf("Progress-analysis (Properties 3.1/3.2) ranking ablation, "
              "i = 2\n\n");
  std::printf("%-16s | %9s | %10s %10s | %10s %10s\n", "circuit", "inserted",
              "resyn(on)", "resyn(off)", "time-on", "time-off");
  std::printf("%s\n", std::string(78, '-').c_str());

  long resyn_on = 0, resyn_off = 0;
  double time_on = 0, time_off = 0;
  int disagreements = 0;
  for (auto& entry : table1_suite()) {
    const StateGraph sg = entry.stg.to_state_graph();
    MapperOptions with;
    with.library.max_literals = 2;
    MapperOptions without = with;
    without.use_progress_filters = false;

    Stopwatch w1;
    const MapResult on = technology_map(sg, with);
    const double t1 = w1.ms();
    Stopwatch w2;
    const MapResult off = technology_map(sg, without);
    const double t2 = w2.ms();

    if (on.implementable != off.implementable) ++disagreements;
    resyn_on += on.resyntheses;
    resyn_off += off.resyntheses;
    time_on += t1;
    time_off += t2;
    std::printf("%-16s | %9s | %10ld %10ld | %8.1fms %8.1fms\n",
                entry.name.c_str(), insertions_cell(on).c_str(),
                on.resyntheses, off.resyntheses, t1, t2);
  }
  std::printf("%s\n", std::string(78, '-').c_str());
  std::printf("total resyntheses: ranked %ld, unranked %ld (%.2fx); "
              "total time: %.0f ms vs %.0f ms; solved-set disagreements: %d\n",
              resyn_on, resyn_off,
              resyn_on > 0 ? double(resyn_off) / double(resyn_on) : 0.0,
              time_on, time_off, disagreements);
  return 0;
}
