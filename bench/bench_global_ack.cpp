// Reproduction of Figure 6 and the global-acknowledgement claim (Section 4).
//
// The paper's key advantage over [12, 4] is that transitions of an inserted
// signal may be acknowledged by covers other than the decomposition target
// ("global acknowledgement"), which is what lets high-fanin circuits like
// vbe10b be decomposed into 2-literal gates.  This bench:
//   1. prints the vbe10b circuit before and after decomposition into
//      2-literal gates (Figure 6);
//   2. runs the whole suite at i = 2 with global acknowledgement ON and OFF
//      (the local-acknowledgement ablation) and compares the solved counts.

#include <cstdio>
#include <string>

#include "bench/table_common.hpp"
#include "benchlib/suite.hpp"
#include "core/mapper.hpp"
#include "core/mc_cover.hpp"
#include "stg/stg.hpp"

using namespace sitm;
using namespace sitm::bench;

int main() {
  // ---- Figure 6: vbe10b before/after --------------------------------
  {
    const auto entry = suite_benchmark("vbe10b");
    const StateGraph sg = entry.stg.to_state_graph();
    const Netlist before = synthesize_all(sg);
    std::printf("Figure 6 — vbe10b (%s) before decomposition "
                "(max gate %d literals):\n%s\n",
                entry.family.c_str(), before.max_gate_complexity(),
                before.to_string().c_str());

    MapperOptions opts;
    opts.library.max_literals = 2;
    const MapResult result = technology_map(sg, opts);
    if (result.implementable) {
      const Netlist after = result.build_netlist();
      std::printf("after decomposition into 2-literal gates "
                  "(%d signals inserted, max gate %d literals):\n%s\n",
                  result.signals_inserted, after.max_gate_complexity(),
                  after.to_string().c_str());
    } else {
      std::printf("vbe10b NOT implementable at i=2: %s\n",
                  result.failure.c_str());
    }
  }

  // ---- ablation: global vs local acknowledgement ---------------------
  std::printf("\nGlobal vs local acknowledgement at i = 2\n");
  std::printf("%-16s | %10s | %10s\n", "circuit", "global", "local-only");
  std::printf("%s\n", std::string(44, '-').c_str());
  int solved_global = 0, solved_local = 0, total = 0;
  for (auto& entry : table1_suite()) {
    const StateGraph sg = entry.stg.to_state_graph();
    MapperOptions global;
    global.library.max_literals = 2;
    MapperOptions local = global;
    local.global_acknowledgement = false;

    const MapResult rg = technology_map(sg, global);
    const MapResult rl = technology_map(sg, local);
    ++total;
    if (rg.implementable) ++solved_global;
    if (rl.implementable) ++solved_local;
    std::printf("%-16s | %10s | %10s\n", entry.name.c_str(),
                insertions_cell(rg).c_str(), insertions_cell(rl).c_str());
  }
  std::printf("%s\n", std::string(44, '-').c_str());
  std::printf("solved: global %d/%d, local-only %d/%d\n", solved_global, total,
              solved_local, total);
  std::printf("(paper: global acknowledgement decomposes 6-7 literal gates "
              "where local acknowledgment fails)\n");
  return 0;
}
