// Architecture ablation (paper Figure 2: standard-C vs complete-cover
// implementations).
//
// For every benchmark this compares three per-signal architecture policies
// for the unconstrained implementation:
//   * standard-C  — always set/reset networks + C element (Fig. 2a);
//   * complex     — always the complete cover as one atomic gate (Fig. 2b/c);
//   * auto        — the library default (complete cover when no worse).
// Columns report total literals / C elements and the worst gate; every
// variant is re-verified speed-independent at the gate level.

#include <cstdio>
#include <string>

#include "bench/table_common.hpp"
#include "benchlib/suite.hpp"
#include "core/mc_cover.hpp"
#include "netlist/si_verify.hpp"
#include "util/text.hpp"
#include "stg/stg.hpp"

using namespace sitm;
using namespace sitm::bench;

int main() {
  std::printf("Architecture ablation: standard-C vs complex-gate vs auto\n\n");
  std::printf("%-16s | %-14s | %-14s | %-14s\n", "circuit",
              "standard-C", "complex gate", "auto");
  std::printf("%-16s | %-14s | %-14s | %-14s\n", "",
              "lit/C (max)", "lit/C (max)", "lit/C (max)");
  std::printf("%s\n", std::string(70, '-').c_str());

  long totals[3] = {0, 0, 0};
  int verified = 0, total_variants = 0;
  for (auto& entry : table1_suite()) {
    const StateGraph sg = entry.stg.to_state_graph();
    std::string cells[3];
    const Architecture archs[3] = {Architecture::kStandardC,
                                   Architecture::kComplexGate,
                                   Architecture::kAuto};
    for (int i = 0; i < 3; ++i) {
      McOptions mc;
      mc.architecture = archs[i];
      const Netlist netlist = synthesize_all(sg, mc);
      cells[i] = strfmt("%d/%d (%d)", netlist.total_literals(),
                        netlist.num_c_elements(),
                        netlist.max_gate_complexity());
      totals[i] += netlist.total_literals() + 3 * netlist.num_c_elements();
      ++total_variants;
      if (verify_speed_independence(netlist).ok) ++verified;
    }
    std::printf("%-16s | %-14s | %-14s | %-14s\n", entry.name.c_str(),
                cells[0].c_str(), cells[1].c_str(), cells[2].c_str());
  }
  std::printf("%s\n", std::string(70, '-').c_str());
  std::printf("aggregate area (literals + 3/C): standard-C %ld, "
              "complex %ld, auto %ld\n",
              totals[0], totals[1], totals[2]);
  std::printf("gate-level SI verification: %d/%d variants pass\n", verified,
              total_variants);
  return verified == total_variants ? 0 : 1;
}
