// Reproduction of Table 1's final column group: the area cost of
// speed-independence-preserving decomposition into 2-literal gates versus
// the non-SI baseline (SIS `tech_decomp -a 2`).
//
// For every benchmark it prints literals/C-elements for:
//   * non-SI: balanced 2-input AND/OR tree decomposition of the monotonous
//     covers, ignoring hazards;
//   * SI: the mapper's speed-independence-preserving decomposition.
//
// The paper's headline: counting a C element as roughly a 3-input gate, the
// cost of preserving speed-independence is within ~10% of the non-SI area.
// The aggregate ratio is printed at the end for comparison.

#include <cstdio>
#include <string>

#include "bench/table_common.hpp"
#include "benchlib/suite.hpp"
#include "core/mapper.hpp"
#include "core/mc_cover.hpp"
#include "netlist/tech_decomp.hpp"
#include "util/text.hpp"
#include "stg/stg.hpp"

using namespace sitm;
using namespace sitm::bench;

int main() {
  std::printf("Table 1 (cost columns): non-SI vs SI decomposition into "
              "2-literal gates\n\n");
  std::printf("%-16s | %12s | %12s | %7s\n", "circuit", "non-SI lit/C",
              "SI lit/C", "ratio");
  std::printf("%s\n", std::string(58, '-').c_str());

  // Area model for the summary: a C element counts as a 3-input gate.
  const int kCElementLiterals = 3;
  long non_si_area = 0, si_area = 0;
  int solved = 0, total = 0;

  for (auto& entry : table1_suite()) {
    const StateGraph sg = entry.stg.to_state_graph();
    const Netlist original = synthesize_all(sg);
    const TechDecompResult baseline = tech_decomp2(original);

    MapperOptions opts;
    opts.library.max_literals = 2;
    const MapResult result = technology_map(sg, opts);
    ++total;

    std::string si_cell = "n.i.";
    std::string ratio_cell = "-";
    if (result.implementable) {
      const Netlist mapped = result.build_netlist();
      const int lits = mapped.total_literals();
      const int cs = mapped.num_c_elements();
      si_cell = std::to_string(lits) + "/" + std::to_string(cs);
      const long base =
          baseline.literals + kCElementLiterals * baseline.c_elements;
      const long ours = lits + kCElementLiterals * cs;
      non_si_area += base;
      si_area += ours;
      ++solved;
      ratio_cell = strfmt("%.2f", base > 0 ? double(ours) / double(base) : 1.0);
    }
    std::printf("%-16s | %7d/%-4d | %12s | %7s\n", entry.name.c_str(),
                baseline.literals, baseline.c_elements, si_cell.c_str(),
                ratio_cell.c_str());
  }
  std::printf("%s\n", std::string(58, '-').c_str());
  if (non_si_area > 0) {
    std::printf("aggregate area ratio (SI / non-SI, C element = 3-input "
                "gate), %d/%d solved: %.3f\n",
                solved, total,
                static_cast<double>(si_area) / static_cast<double>(non_si_area));
    std::printf("(paper: SI overhead not higher than ~10%%)\n");
  }
  return 0;
}
