#!/usr/bin/env bash
# Run the scaling benchmark into BENCH_scaling.json so successive PRs leave a
# comparable perf trajectory.  Usage:
#
#   bench/run_bench.sh [build-dir] [extra google-benchmark args...]
#
# Builds the bench target if needed, then overwrites BENCH_scaling.json at
# the repository root (set BENCH_OUT to write elsewhere — CI uses this to
# produce a fresh run for bench/compare_bench.py without touching the
# checked-in baseline).  Compare two checkouts with e.g.:
#
#   jq -r '.benchmarks[] | "\(.name) \(.real_time)"' BENCH_scaling.json

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
shift || true
out_file="${BENCH_OUT:-$repo_root/BENCH_scaling.json}"

if [[ ! -d "$build_dir" ]]; then
  cmake -B "$build_dir" -S "$repo_root"
fi
cmake --build "$build_dir" --target bench_scaling -j"$(nproc)"

"$build_dir/bench_scaling" \
  --benchmark_format=console \
  --benchmark_out="$out_file" \
  --benchmark_out_format=json \
  "$@"

# Stamp the host shape into the report.  compare_bench.py uses host.nproc to
# decide whether thread-scaling benchmarks are comparable at all: a baseline
# from the single-core container says nothing about 8-thread speedups.
cpu_model="$(sed -n 's/^model name[[:space:]]*: //p' /proc/cpuinfo 2>/dev/null \
  | head -1)"
[[ -n "$cpu_model" ]] || cpu_model="$(uname -m)"
nproc_now="$(nproc)" cpu_model="$cpu_model" python3 - "$out_file" <<'PY'
import json
import os
import sys

path = sys.argv[1]
with open(path, encoding="utf-8") as fh:
    report = json.load(fh)
report["host"] = {
    "nproc": int(os.environ["nproc_now"]),
    "fingerprint": os.environ["cpu_model"],
}
with open(path, "w", encoding="utf-8") as fh:
    json.dump(report, fh, indent=2)
    fh.write("\n")
PY

echo "wrote $out_file"
