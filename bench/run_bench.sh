#!/usr/bin/env bash
# Run the scaling benchmark into BENCH_scaling.json so successive PRs leave a
# comparable perf trajectory.  Usage:
#
#   bench/run_bench.sh [build-dir] [extra google-benchmark args...]
#
# Builds the bench target if needed, then overwrites BENCH_scaling.json at
# the repository root (set BENCH_OUT to write elsewhere — CI uses this to
# produce a fresh run for bench/compare_bench.py without touching the
# checked-in baseline).  Compare two checkouts with e.g.:
#
#   jq -r '.benchmarks[] | "\(.name) \(.real_time)"' BENCH_scaling.json

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
shift || true
out_file="${BENCH_OUT:-$repo_root/BENCH_scaling.json}"

if [[ ! -d "$build_dir" ]]; then
  cmake -B "$build_dir" -S "$repo_root"
fi
cmake --build "$build_dir" --target bench_scaling -j"$(nproc)"

"$build_dir/bench_scaling" \
  --benchmark_format=console \
  --benchmark_out="$out_file" \
  --benchmark_out_format=json \
  "$@"

echo "wrote $out_file"
