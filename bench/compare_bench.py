#!/usr/bin/env python3
"""Gate wall-time regressions against the checked-in benchmark baseline.

Usage:
    compare_bench.py BASELINE.json FRESH.json [--threshold PCT]
                     [--names REGEX] [--no-normalize]
                     [--thread-scaling REGEX]
                     [--speedup SLOW/FAST:MIN ...]

Both files are google-benchmark JSON reports (bench/run_bench.sh output).
Benchmarks are matched by name; a benchmark regresses when its fresh
real_time exceeds the baseline by more than --threshold percent (default
25).  Only names matching --names (default: everything) are gated;
benchmarks present in one file only are reported but never fail the gate.

Because the baseline is produced on the repo's single-core benchmark
container and the fresh run typically is not (CI runners differ in CPU,
load and frequency scaling), raw cross-machine ratios are dominated by
machine speed.  By default the gate therefore normalizes: each benchmark's
ratio is divided by the median ratio over all matched benchmarks, so a
uniform machine-speed shift cancels and only benchmarks that regressed
*relative to the rest of the suite* fail.  --no-normalize gates on raw
ratios instead (sensible when both runs come from the same machine).

Thread-scaling benchmarks (names matching --thread-scaling; the default
covers the two thread-count sweeps in bench_scaling.cpp) are only
comparable between machines with the same core count:
a baseline recorded on the single-core container pins no speedup an
8-core runner should reproduce, and vice versa.  run_bench.sh stamps
"host": {"nproc", "fingerprint"} into its reports; when both reports
carry a core count (host.nproc, falling back to google-benchmark's
context.num_cpus) and the counts differ, thread-scaling benchmarks are
dropped from the gate with a printed note.

--speedup SLOW/FAST:MIN additionally asserts that, within the FRESH run
alone, benchmark SLOW takes at least MIN times as long as benchmark FAST
(e.g. --speedup BM_ServeCold/BM_ServeWarm:10 pins the serve cache's warm
speedup).  Intra-run ratios compare two numbers from the same machine, so
no normalization applies.

Exit status: 0 = no gated regression, 1 = regression, 2 = usage/input error.
"""

import argparse
import json
import re
import sys


def load_report(path):
    try:
        with open(path, encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, ValueError) as err:
        print(f"compare_bench: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(2)


def host_nproc(report):
    """Core count the report was recorded on, or None when unrecorded.

    Prefers the host block stamped by run_bench.sh; google-benchmark's own
    context.num_cpus is the fallback for reports produced without it.
    """
    host = report.get("host", {})
    if isinstance(host.get("nproc"), int):
        return host["nproc"]
    cpus = report.get("context", {}).get("num_cpus")
    return cpus if isinstance(cpus, int) else None


def load_benchmarks(report, path):
    """name -> real_time in nanoseconds, iteration entries only."""
    to_ns = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}
    out = {}
    for bm in report.get("benchmarks", []):
        if bm.get("run_type", "iteration") != "iteration":
            continue  # skip mean/median/stddev aggregates
        unit = bm.get("time_unit", "ns")
        if unit not in to_ns:
            print(f"compare_bench: unknown time_unit '{unit}' in {path}",
                  file=sys.stderr)
            sys.exit(2)
        out[bm["name"]] = float(bm["real_time"]) * to_ns[unit]
    if not out:
        print(f"compare_bench: no benchmark entries in {path}",
              file=sys.stderr)
        sys.exit(2)
    return out


def median(values):
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def main():
    parser = argparse.ArgumentParser(
        description="Fail on wall-time regressions vs a baseline report.")
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument("--threshold", type=float, default=25.0,
                        help="allowed regression in percent (default 25)")
    parser.add_argument("--names", default=".*",
                        help="regex of benchmark names to gate")
    parser.add_argument("--no-normalize", action="store_true",
                        help="gate raw ratios (same-machine runs)")
    parser.add_argument("--thread-scaling",
                        default="SynthesizeAllParallel|MapParallelResynth",
                        metavar="REGEX",
                        help="benchmarks skipped when core counts differ")
    parser.add_argument("--speedup", action="append", default=[],
                        metavar="SLOW/FAST:MIN",
                        help="assert fresh[SLOW] >= MIN * fresh[FAST]")
    args = parser.parse_args()

    base_report = load_report(args.baseline)
    fresh_report = load_report(args.fresh)
    base = load_benchmarks(base_report, args.baseline)
    fresh = load_benchmarks(fresh_report, args.fresh)
    name_re = re.compile(args.names)

    base_cores = host_nproc(base_report)
    fresh_cores = host_nproc(fresh_report)
    skipped_scaling = []
    if (base_cores is not None and fresh_cores is not None
            and base_cores != fresh_cores):
        scaling_re = re.compile(args.thread_scaling)
        skipped_scaling = sorted(n for n in base if scaling_re.search(n))
        for name in skipped_scaling:
            base.pop(name, None)
            fresh.pop(name, None)

    matched = sorted(n for n in base if n in fresh and name_re.search(n))
    missing = sorted(n for n in base
                     if n not in fresh and name_re.search(n))
    if not matched:
        print("compare_bench: no gated benchmark present in both reports",
              file=sys.stderr)
        sys.exit(2)

    ratios = {n: fresh[n] / base[n] for n in matched}
    norm = 1.0 if args.no_normalize else median(ratios.values())
    limit = 1.0 + args.threshold / 100.0

    print(f"perf gate: {len(matched)} benchmark(s), threshold "
          f"+{args.threshold:g}%"
          + ("" if args.no_normalize
             else f", machine-speed normalizer {norm:.3f}x (median ratio)"))
    print("note: the checked-in baseline comes from the single-core "
          "benchmark container; absolute times on other machines differ "
          "and only the normalized spread is meaningful there.")
    if skipped_scaling:
        print(f"note: core counts differ (baseline {base_cores}, fresh "
              f"{fresh_cores}); skipping {len(skipped_scaling)} "
              f"thread-scaling benchmark(s) matching "
              f"'{args.thread_scaling}':")
        for name in skipped_scaling:
            print(f"  {name}: skipped (thread scaling not comparable)")

    failed = []
    for name in matched:
        rel = ratios[name] / norm
        verdict = "ok"
        if rel > limit:
            verdict = "REGRESSED"
            failed.append(name)
        print(f"  {name}: base {base[name] / 1e6:.3f} ms, "
              f"fresh {fresh[name] / 1e6:.3f} ms, "
              f"ratio {ratios[name]:.3f}x, relative {rel:.3f}x [{verdict}]")
    for name in missing:
        print(f"  {name}: missing from fresh run (not gated)")

    for spec in args.speedup:
        match = re.fullmatch(r"([^/]+)/([^:]+):([0-9.]+)", spec)
        if not match:
            print(f"compare_bench: bad --speedup spec '{spec}' "
                  "(want SLOW/FAST:MIN)", file=sys.stderr)
            sys.exit(2)
        slow, fast, minimum = match.group(1), match.group(2), float(
            match.group(3))
        if slow not in fresh or fast not in fresh:
            print(f"compare_bench: --speedup names missing from fresh run: "
                  f"{spec}", file=sys.stderr)
            sys.exit(2)
        ratio = fresh[slow] / fresh[fast]
        verdict = "ok" if ratio >= minimum else "TOO SLOW"
        print(f"  speedup {slow}/{fast}: {ratio:.1f}x "
              f"(minimum {minimum:g}x) [{verdict}]")
        if ratio < minimum:
            failed.append(f"{slow}/{fast}")

    if failed:
        print(f"perf gate FAILED: {', '.join(failed)}", file=sys.stderr)
        sys.exit(1)
    print("perf gate passed")


if __name__ == "__main__":
    main()
